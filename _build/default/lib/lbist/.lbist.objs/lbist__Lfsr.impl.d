lib/lbist/lfsr.ml: Int64 List
