lib/lbist/bist.mli: Atpg Netlist
