lib/lbist/lfsr.mli:
