lib/lbist/misr.mli:
