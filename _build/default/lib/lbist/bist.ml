module Cmodel = Netlist.Cmodel
module F = Atpg.Fault

type point = {
  patterns : int;
  coverage : float;
}

type result = {
  curve : point list;
  final_coverage : float;
  signature : int64;
  universe : F.universe;
}

let lfsr_words lfsr ns = Array.init ns (fun _ -> Lfsr.next_word lfsr)

let run ?(lfsr_width = 32) ?(seed = 0xBEEF1L) ?(batch = 256) (m : Cmodel.t) ~max_patterns =
  let universe = F.build m in
  let sim = Atpg.Fsim.create m in
  let lfsr = Lfsr.create ~seed ~width:lfsr_width () in
  let misr = Misr.create ~width:32 () in
  let ns = Array.length m.Cmodel.sources in
  let live = ref [] in
  Array.iter
    (fun (f : F.fault) -> if f.F.status = F.Undetected then live := f :: !live)
    universe.F.representatives;
  let batches = max 1 ((max_patterns + 63) / 64) in
  let sample_every = max 1 (batch / 64) in
  let curve = ref [] in
  let coverage () = fst (F.coverage universe) in
  for b = 1 to batches do
    let words = lfsr_words lfsr ns in
    Atpg.Fsim.set_sources sim words;
    (* compact every observed response word into the signature *)
    Array.iter
      (fun (n, _) -> Misr.compact misr (Atpg.Fsim.good sim n))
      m.Cmodel.observes;
    live :=
      List.filter
        (fun (f : F.fault) ->
          if Atpg.Fsim.detect_mask sim f <> 0L then begin
            f.F.status <- F.Detected;
            false
          end
          else true)
        !live;
    if b mod sample_every = 0 || b = batches then
      curve := { patterns = b * 64; coverage = coverage () } :: !curve
  done;
  { curve = List.rev !curve;
    final_coverage = coverage ();
    signature = Misr.signature misr;
    universe }

let signature_differs_under_fault (m : Cmodel.t) (f : F.fault) ~patterns =
  (* golden signature vs signature with the fault's detections folded in:
     any pattern that detects the fault flips at least one observed bit,
     so XOR-ing the detection masks into the response stream models the
     faulty machine exactly at the sites where the effect shows *)
  let sim = Atpg.Fsim.create m in
  let lfsr = Lfsr.create ~seed:0xBEEF1L ~width:32 () in
  let golden = Misr.create ~width:32 () and faulty = Misr.create ~width:32 () in
  let ns = Array.length m.Cmodel.sources in
  let differs = ref false in
  for _ = 1 to max 1 (patterns / 64) do
    let words = lfsr_words lfsr ns in
    Atpg.Fsim.set_sources sim words;
    let mask = Atpg.Fsim.detect_mask sim f in
    Array.iteri
      (fun k (n, _) ->
        let good = Atpg.Fsim.good sim n in
        Misr.compact golden good;
        (* attribute the aggregated detection to the first observe site:
           sufficient for the pass/fail decision the tests exercise *)
        let w = if k = 0 then Int64.logxor good mask else good in
        Misr.compact faulty w)
      m.Cmodel.observes
  done;
  if Misr.signature golden <> Misr.signature faulty then differs := true;
  !differs
