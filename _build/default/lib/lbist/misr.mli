(** Multiple-input signature register: the response compactor of logic
    BIST. Responses are XORed into a shifting LFSR state; equal signatures
    mean (with aliasing probability ~2^-width) equal response streams. *)

type t

val create : ?taps:int list -> width:int -> unit -> t
val compact : t -> int64 -> unit
(** Fold one response word into the signature. *)

val signature : t -> int64
val reset : t -> unit
