(** Pseudo-random logic BIST over the full-scan capture model: a STUMPS-like
    arrangement where an LFSR feeds every scan cell and primary input, the
    circuit captures, and the observed responses are compacted in a MISR.

    This is the context the paper's TPI methods grew up in (§2): the fault
    coverage of pseudo-random patterns saturates against random-resistant
    faults, and test points raise the saturation level. [coverage_curve]
    measures exactly that. *)

type point = {
  patterns : int;
  coverage : float;   (** cumulative stuck-at fault coverage *)
}

type result = {
  curve : point list;           (** coverage after each batch of patterns *)
  final_coverage : float;
  signature : int64;            (** MISR signature over all observed responses *)
  universe : Atpg.Fault.universe;
}

val run :
  ?lfsr_width:int ->
  ?seed:int64 ->
  ?batch:int ->
  Netlist.Cmodel.t ->
  max_patterns:int ->
  result
(** [batch] is the curve sampling interval in patterns (default 256, rounded
    to multiples of 64). Deterministic in [seed]. *)

val signature_differs_under_fault : Netlist.Cmodel.t -> Atpg.Fault.fault -> patterns:int -> bool
(** Golden-vs-faulty signature comparison for one fault: the BIST pass/fail
    decision. Used by tests to validate the MISR path. *)
