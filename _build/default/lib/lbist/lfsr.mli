(** Linear-feedback shift registers: the on-chip pseudo-random stimulus
    generators of logic BIST (paper §2). Fibonacci form with a programmable
    feedback polynomial; the default taps give maximal-length sequences. *)

type t

val create : ?taps:int list -> ?seed:int64 -> width:int -> unit -> t
(** [width] in [2, 64]. [taps] are polynomial exponents (the implicit x^0
    is always included); defaults to a primitive polynomial for widths
    16/24/32, else a reasonable fallback. A zero seed is replaced by 1
    (the all-zero state is a fixed point). *)

val width : t -> int

val state : t -> int64

val step : t -> bool
(** Advance one cycle; returns the bit shifted out. *)

val next_word : t -> int64
(** 64 successive output bits, LSB first: one parallel-pattern word. *)

val period_probe : t -> int -> bool
(** [period_probe t n] returns true if the register returns to its initial
    state within [n] steps (test helper; maximal LFSRs should not). *)
