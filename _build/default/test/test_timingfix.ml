(* flow.Timingfix: the paper's section 5 area-for-delay trade *)

let test_timing_fix_trades_area_for_delay () =
  let d = Circuits.Bench.tiny ~ffs:60 ~gates:900 () in
  ignore (Scan.Replace.run d);
  let fp = Layout.Floorplan.create ~utilization:0.85 d in
  let pl = Layout.Place.run d fp in
  let r = Flow.Timingfix.run pl in
  Alcotest.(check bool) "upsized something" true (r.Flow.Timingfix.upsized_cells > 0);
  Alcotest.(check bool) "delay improves" true
    (r.Flow.Timingfix.t_cp_after < r.Flow.Timingfix.t_cp_before);
  Alcotest.(check bool) "area grows" true
    (r.Flow.Timingfix.cell_area_after > r.Flow.Timingfix.cell_area_before);
  Netlist.Check.assert_clean d

let test_timing_fix_converges () =
  let d = Circuits.Bench.tiny ~ffs:40 ~gates:500 () in
  let fp = Layout.Floorplan.create ~utilization:0.85 d in
  let pl = Layout.Place.run d fp in
  let r = Flow.Timingfix.run ~max_rounds:10 pl in
  Alcotest.(check bool) "bounded rounds" true (r.Flow.Timingfix.rounds <= 10);
  Alcotest.(check bool) "sta coherent" true
    (match r.Flow.Timingfix.sta.Sta.Analysis.worst with
     | Some p -> Float.abs (p.Sta.Analysis.t_cp -. r.Flow.Timingfix.t_cp_after) < 1e-6
     | None -> false)

let suite =
  [ Alcotest.test_case "area-for-delay" `Quick test_timing_fix_trades_area_for_delay;
    Alcotest.test_case "converges" `Quick test_timing_fix_converges ]
