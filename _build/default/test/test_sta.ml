(* sta: delay propagation, clock latency, eq-3 decomposition *)
module Design = Netlist.Design
module Cell = Stdcell.Cell
module A = Sta.Analysis

let analysed d =
  let fp = Layout.Floorplan.create d in
  let pl = Layout.Place.run d fp in
  let rt = Layout.Route.run pl in
  let rc = Layout.Extract.run pl rt in
  (pl, rc, A.run pl rc)

let test_mini_path () =
  let d = Helpers.mini_design () in
  let _, rc, sta = analysed d in
  ignore rc;
  match sta.A.worst with
  | None -> Alcotest.fail "expected a critical path"
  | Some p ->
    (* pi -> NAND2 -> INV -> ff.D: two combinational cells (plus the
       input-port step that carries the first wire segment) *)
    let cells = List.filter (fun s -> s.A.st_inst >= 0) p.A.steps in
    Alcotest.(check int) "two cells on path" 2 (List.length cells);
    Alcotest.(check bool) "starts at input" true
      (match p.A.startpoint with A.From_input _ -> true | A.From_ff _ -> false);
    Alcotest.(check bool) "positive delay" true (p.A.t_cp > 0.0);
    (* breakdown identity: eq (3) components sum to the reported T_cp *)
    Helpers.check_approx "eq3 sums up"
      (A.breakdown_total p.A.breakdown /. p.A.t_cp) 1.0

let test_breakdown_identity_tiny () =
  let d = Circuits.Bench.tiny ~ffs:30 ~gates:400 () in
  let _, _, sta = analysed d in
  Array.iter
    (fun path ->
      match path with
      | None -> ()
      | Some (p : A.critical_path) ->
        Alcotest.(check bool) "breakdown sums to t_cp" true
          (Float.abs (A.breakdown_total p.A.breakdown -. p.A.t_cp) < 1.0))
    sta.A.per_domain

let test_tsff_appears_on_path () =
  (* mini design with a TSFF spliced into the only path: the path must
     traverse it and t_cp must grow by at least the TSFF's two-mux delay *)
  let d0 = Helpers.mini_design () in
  let _, _, sta0 = analysed d0 in
  let t0 = (Option.get sta0.A.worst).A.t_cp in
  let d = Helpers.mini_design () in
  let n2 = (Design.inst d 1).Design.conns.(1) in
  ignore (Tpi.Insert.insert_point d ~net:n2 ~index:0);
  let _, _, sta = analysed d in
  let p = Option.get sta.A.worst in
  Alcotest.(check int) "tsff counted" 1 p.A.test_points_on_path;
  Alcotest.(check bool) "delay grew by the transparent path" true
    (p.A.t_cp > t0 +. 100.0)

let test_clock_latency_after_cts () =
  let d = Circuits.Bench.tiny ~ffs:60 ~gates:600 () in
  let fp = Layout.Floorplan.create d in
  let pl = Layout.Place.run d fp in
  ignore (Layout.Cts.run pl);
  let rt = Layout.Route.run pl in
  let rc = Layout.Extract.run pl rt in
  let sta = A.run pl rc in
  (* all FF clock pins now see a positive latency through the buffer tree *)
  Design.iter_insts d (fun i ->
      if Design.is_ff i then begin
        match Cell.clock_pin i.Design.cell with
        | Some ck ->
          let cknet = i.Design.conns.(ck) in
          Alcotest.(check bool) "positive clock latency" true (sta.A.arrival.(cknet) > 0.0)
        | None -> ()
      end);
  match sta.A.worst with
  | Some p ->
    Alcotest.(check bool) "skew is small relative to t_cp" true
      (Float.abs p.A.breakdown.A.b_skew < 0.25 *. p.A.t_cp)
  | None -> Alcotest.fail "no path"

let test_cross_domain_excluded () =
  let d = Circuits.Bench.pcore_a ~scale:0.04 () in
  let _, _, sta = analysed d in
  Array.iteri
    (fun dom path ->
      match path with
      | None -> ()
      | Some (p : A.critical_path) ->
        Alcotest.(check int) "path stays in its domain" dom p.A.domain;
        (match p.A.startpoint with
         | A.From_ff src ->
           Alcotest.(check int) "launch domain matches" dom (Design.inst d src).Design.domain
         | A.From_input _ -> ()))
    sta.A.per_domain

let test_test_mode_arcs_blocked () =
  (* a TSFF's CK->Q arc is test-only: its Q arrival must come from D, so a
     design whose only TSFF input path is D must still time cleanly *)
  let d = Helpers.mini_design () in
  let n2 = (Design.inst d 1).Design.conns.(1) in
  ignore (Tpi.Insert.insert_point d ~net:n2 ~index:0);
  let _, _, sta = analysed d in
  (* TSFF output net arrival = D-side arrival + transparent delay, which is
     far below any clock-launched value in this tiny design *)
  Alcotest.(check bool) "analysis completes with TSFF" true (sta.A.worst <> None)

let suite =
  [ Alcotest.test_case "mini path" `Quick test_mini_path;
    Alcotest.test_case "breakdown identity" `Quick test_breakdown_identity_tiny;
    Alcotest.test_case "tsff on path" `Quick test_tsff_appears_on_path;
    Alcotest.test_case "clock latency" `Quick test_clock_latency_after_cts;
    Alcotest.test_case "cross-domain excluded" `Quick test_cross_domain_excluded;
    Alcotest.test_case "test arcs blocked" `Quick test_test_mode_arcs_blocked ]
