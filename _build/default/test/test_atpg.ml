(* atpg: faults, simulator, PODEM, pattern generation, TDV *)
module Design = Netlist.Design
module F = Atpg.Fault
module C = Netlist.Cmodel

let small_model () =
  let d = Circuits.Bench.tiny ~ffs:16 ~gates:200 () in
  (d, C.build d)

let test_universe_collapse () =
  let _, m = small_model () in
  let u = F.build m in
  Alcotest.(check bool) "collapse shrinks" true
    (Array.length u.F.representatives < Array.length u.F.faults);
  (* every representative is its own class head *)
  Array.iter
    (fun f -> Alcotest.(check int) "self-representative" f.F.fid (F.representative u f).F.fid)
    u.F.representatives;
  Alcotest.(check bool) "universe counts infra" true (u.F.infra_faults > 0);
  Alcotest.(check bool) "total covers all" true
    (u.F.total >= Array.length u.F.faults)

let test_inverter_collapse () =
  (* on an inverter, input s-a-0 is equivalent to output s-a-1 *)
  let d = Design.create "inv" in
  let _ = Design.add_domain d ~name:"clk" ~period_ps:1000.0
            ~clock_net:(Design.add_port d "clk" Design.In).Design.pnet in
  let a = Design.add_port d "a" Design.In in
  let po = Design.add_port d "po" Design.Out in
  let g = Design.add_instance d ~name:"g" ~cell:(Helpers.cell Stdcell.Cell.Inv) in
  let y = Design.add_net d "y" in
  Design.connect d ~inst:g.Design.id ~pin:0 ~net:a.Design.pnet;
  Design.connect d ~inst:g.Design.id ~pin:1 ~net:y.Design.nid;
  Design.connect_out_port d ~port:po.Design.pid ~net:y.Design.nid;
  let m = C.build d in
  let u = F.build m in
  (* a s-a-0 / s-a-1, branch a s-a-0/1, y s-a-0/1 collapse into 2 classes *)
  Alcotest.(check int) "two classes" 2 (Array.length u.F.representatives)

let test_fsim_against_reference () =
  (* detect_mask must agree with simulating good and faulty circuits *)
  let d, m = small_model () in
  ignore d;
  let sim = Atpg.Fsim.create m in
  let rng = Util.Rng.create 11 in
  let ns = Array.length m.C.sources in
  let u = F.build m in
  for _ = 1 to 3 do
    let words = Array.init ns (fun _ -> Util.Rng.int64 rng) in
    Atpg.Fsim.set_sources sim words;
    (* reference: for stem faults, flip the net and fully re-simulate *)
    let reference_detects (f : F.fault) =
      match f.F.site with
      | F.Stem stem ->
        let good = Array.map (fun (n, _) -> Atpg.Fsim.good sim n) m.C.observes in
        (* recompute entire circuit with the stem forced *)
        let values = Array.make m.C.num_nets 0L in
        Array.iteri (fun k (n, _) -> values.(n) <- words.(k)) m.C.sources;
        Array.iter (fun (n, v) -> values.(n) <- (if v then -1L else 0L)) m.C.consts;
        let force () = values.(stem) <- (if f.F.stuck then -1L else 0L) in
        force ();
        Array.iter
          (fun (g : C.gate) ->
            let ins = Array.map (fun i -> values.(i)) g.C.g_ins in
            values.(g.C.g_out) <- Stdcell.Cell.eval64 g.C.g_kind ins;
            force ())
          m.C.gates;
        let detected = ref 0L in
        Array.iteri
          (fun k (n, _) ->
            detected := Int64.logor !detected (Int64.logxor values.(n) good.(k)))
          m.C.observes;
        !detected
      | _ -> 0L
    in
    let checked = ref 0 in
    Array.iter
      (fun (f : F.fault) ->
        match f.F.site with
        | F.Stem _ when !checked < 60 ->
          incr checked;
          Alcotest.(check int64)
            (Printf.sprintf "mask agrees (fault %d)" f.F.fid)
            (reference_detects f) (Atpg.Fsim.detect_mask sim f)
        | _ -> ())
      u.F.faults
  done

let test_podem_cubes_are_valid () =
  let _, m = small_model () in
  let u = F.build m in
  let sim = Atpg.Fsim.create m in
  let podem = Atpg.Podem.create m in
  let ns = Array.length m.C.sources in
  let rng = Util.Rng.create 5 in
  let tested = ref 0 in
  Array.iter
    (fun (f : F.fault) ->
      if !tested < 80 then
        match Atpg.Podem.generate podem f with
        | Atpg.Podem.Test cube ->
          incr tested;
          (* any random completion of the cube must detect the fault *)
          let words = Array.init ns (fun _ -> Util.Rng.int64 rng) in
          List.iter (fun (s, v) -> words.(s) <- (if v then -1L else 0L)) cube;
          Atpg.Fsim.set_sources sim words;
          Alcotest.(check int64) "cube detects in all 64 completions" (-1L)
            (Atpg.Fsim.detect_mask sim f)
        | Atpg.Podem.Untestable | Atpg.Podem.Abort -> ())
    u.F.representatives;
  Alcotest.(check bool) "tested a decent sample" true (!tested >= 40)

let test_podem_redundant_never_detected () =
  let _, m = small_model () in
  let u = F.build m in
  let sim = Atpg.Fsim.create m in
  let podem = Atpg.Podem.create m in
  let ns = Array.length m.C.sources in
  let rng = Util.Rng.create 17 in
  let redundant = ref [] in
  Array.iter
    (fun (f : F.fault) ->
      if List.length !redundant < 10 then
        match Atpg.Podem.generate ~backtrack_limit:3000 podem f with
        | Atpg.Podem.Untestable -> redundant := f :: !redundant
        | _ -> ())
    u.F.representatives;
  (* 20 random batches must never detect a proven-redundant fault *)
  for _ = 1 to 20 do
    let words = Array.init ns (fun _ -> Util.Rng.int64 rng) in
    Atpg.Fsim.set_sources sim words;
    List.iter
      (fun f ->
        Alcotest.(check int64) "redundant fault never detected" 0L
          (Atpg.Fsim.detect_mask sim f))
      !redundant
  done

let test_patgen_end_to_end () =
  let _, m = small_model () in
  let o = Atpg.Patgen.run m in
  Alcotest.(check bool) "patterns found" true (Atpg.Patgen.num_patterns o > 0);
  Alcotest.(check bool) "fc sane" true
    (o.Atpg.Patgen.fault_coverage > 0.85 && o.Atpg.Patgen.fault_coverage <= 1.0);
  Alcotest.(check bool) "fe >= fc" true
    (o.Atpg.Patgen.fault_efficiency >= o.Atpg.Patgen.fault_coverage -. 1e-9);
  (* replaying the final pattern set reaches the claimed coverage *)
  let u = F.build m in
  let sim = Atpg.Fsim.create m in
  let ns = Array.length m.C.sources in
  let live = ref (Array.to_list u.F.representatives) in
  List.iter
    (fun pat ->
      let words =
        Array.init ns (fun s -> if Bytes.get pat s = '\001' then -1L else 0L)
      in
      Atpg.Fsim.set_sources sim words;
      live := List.filter (fun f -> Atpg.Fsim.detect_mask sim f = 0L) !live)
    o.Atpg.Patgen.patterns;
  let replay_detected =
    Array.length u.F.representatives - List.length !live
  in
  let claimed =
    Array.fold_left
      (fun acc (f : F.fault) -> if f.F.status = F.Detected then acc + 1 else acc)
      0 o.Atpg.Patgen.universe.F.representatives
  in
  Alcotest.(check bool) "replay reaches claimed detection" true
    (replay_detected >= claimed - 2)

let test_patgen_deterministic () =
  let _, m1 = small_model () in
  let _, m2 = small_model () in
  let o1 = Atpg.Patgen.run m1 and o2 = Atpg.Patgen.run m2 in
  Alcotest.(check int) "same pattern count" (Atpg.Patgen.num_patterns o1)
    (Atpg.Patgen.num_patterns o2)

let test_tdv_formulas () =
  (* eq (1) and (2) with n=4 chains, lmax=100, p=10 *)
  Alcotest.(check int) "tat" ((101 * 10) + 100) (Atpg.Tdv.tat ~lmax:100 ~patterns:10);
  Alcotest.(check int) "tdv" (2 * 4 * ((101 * 10) + 100))
    (Atpg.Tdv.tdv ~chains:4 ~lmax:100 ~patterns:10);
  Helpers.check_approx "reduction" 50.0 (Atpg.Tdv.reduction_pct ~before:200 ~after:100)

let suite =
  [ Alcotest.test_case "universe collapse" `Quick test_universe_collapse;
    Alcotest.test_case "inverter collapse" `Quick test_inverter_collapse;
    Alcotest.test_case "fsim vs reference" `Slow test_fsim_against_reference;
    Alcotest.test_case "podem cube validity" `Slow test_podem_cubes_are_valid;
    Alcotest.test_case "podem redundancy" `Slow test_podem_redundant_never_detected;
    Alcotest.test_case "patgen end-to-end" `Slow test_patgen_end_to_end;
    Alcotest.test_case "patgen deterministic" `Slow test_patgen_deterministic;
    Alcotest.test_case "tdv formulas" `Quick test_tdv_formulas ]
