(* circuits: profiles and the synthetic generator *)
module Design = Netlist.Design

let test_determinism () =
  let a = Circuits.Bench.tiny () and b = Circuits.Bench.tiny () in
  Alcotest.(check string) "identical netlists"
    (Netlist.Verilog.to_string a) (Netlist.Verilog.to_string b)

let test_seed_changes_netlist () =
  let a = Circuits.Bench.tiny ~seed:1 () and b = Circuits.Bench.tiny ~seed:2 () in
  Alcotest.(check bool) "different netlists" true
    (Netlist.Verilog.to_string a <> Netlist.Verilog.to_string b)

let test_profile_stats () =
  let d = Circuits.Bench.tiny ~ffs:30 ~gates:400 () in
  Netlist.Check.assert_clean d;
  let s = Netlist.Stats.compute d in
  Alcotest.(check int) "ff count exact" 30 s.Netlist.Stats.ffs;
  Alcotest.(check bool) "gates near budget" true
    (s.Netlist.Stats.combinational >= 350 && s.Netlist.Stats.combinational <= 500);
  Alcotest.(check bool) "acyclic" true (s.Netlist.Stats.logic_depth > 0)

let test_profile_validation () =
  let bad = { Circuits.Bench.s38417_profile with Circuits.Profile.num_pis = 0 } in
  Alcotest.(check bool) "rejected" true
    (try Circuits.Profile.validate bad; false with Invalid_argument _ -> true)

let test_scaling () =
  let p = Circuits.Profile.scale 0.5 Circuits.Bench.s38417_profile in
  Alcotest.(check int) "ffs halved" 818 p.Circuits.Profile.num_ffs;
  Alcotest.(check bool) "blocks scaled" true (p.Circuits.Profile.hard_blocks >= 1)

let test_fanout_bounded () =
  let d = Circuits.Bench.tiny ~gates:600 () in
  let clock_nets =
    Array.to_list (Array.map (fun (dom : Design.domain) -> dom.Design.clock_net) d.Design.domains)
  in
  Design.iter_nets d (fun n ->
      if not (List.mem n.Design.nid clock_nets) then
        Alcotest.(check bool) "fanout bounded" true (List.length n.Design.sinks <= 12))
  [@warning "-26"]

let test_named_circuits_exist () =
  List.iter
    (fun (name, _) ->
      let d = Circuits.Bench.by_name name ~scale:0.05 in
      Netlist.Check.assert_clean d;
      Alcotest.(check bool) "has domains" true (Array.length d.Design.domains >= 1))
    Circuits.Bench.default_scales

let test_pcore_a_two_domains () =
  let d = Circuits.Bench.pcore_a ~scale:0.05 () in
  Alcotest.(check int) "two clock domains" 2 (Array.length d.Design.domains);
  (* both domains actually hold flip-flops *)
  let counts = Array.make 2 0 in
  Design.iter_insts d (fun i ->
      if Design.is_ff i then counts.(i.Design.domain) <- counts.(i.Design.domain) + 1);
  Alcotest.(check bool) "both populated" true (counts.(0) > 0 && counts.(1) > 0)

let prop_generated_designs_clean =
  QCheck.Test.make ~name:"random profiles generate clean acyclic designs" ~count:12
    QCheck.(pair (int_range 1 1000) (int_range 8 40))
    (fun (seed, ffs) ->
      let d = Circuits.Bench.tiny ~seed ~ffs ~gates:(ffs * 12) () in
      Netlist.Check.assert_clean d;
      (Netlist.Stats.compute d).Netlist.Stats.logic_depth > 0)

let suite =
  [ Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_netlist;
    Alcotest.test_case "profile stats" `Quick test_profile_stats;
    Alcotest.test_case "profile validation" `Quick test_profile_validation;
    Alcotest.test_case "scaling" `Quick test_scaling;
    Alcotest.test_case "fanout bounded" `Quick test_fanout_bounded;
    Alcotest.test_case "named circuits" `Quick test_named_circuits_exist;
    Alcotest.test_case "pcore_a domains" `Quick test_pcore_a_two_domains;
    QCheck_alcotest.to_alcotest prop_generated_designs_clean ]
