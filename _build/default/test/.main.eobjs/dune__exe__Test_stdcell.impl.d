test/test_stdcell.ml: Alcotest Array Helpers Int64 List QCheck QCheck_alcotest Stdcell
