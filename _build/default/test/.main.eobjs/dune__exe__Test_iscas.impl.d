test/test_iscas.ml: Alcotest Array Atpg Circuits Flow Netlist Scan Sta
