test/test_scan.ml: Alcotest Array Circuits Layout List Netlist Option Printf Scan Stdcell
