test/test_tpi.ml: Alcotest Array Circuits Float Fun Helpers List Netlist Stdcell Testability Tpi
