test/test_more.ml: Alcotest Array Astring_contains Atpg Circuits Flow Geom Helpers Layout List Netlist Option Printf Scan Sta Stdcell
