test/test_netlist.ml: Alcotest Array Circuits Helpers List Netlist Stdcell
