test/test_geom.ml: Alcotest Geom Helpers QCheck QCheck_alcotest
