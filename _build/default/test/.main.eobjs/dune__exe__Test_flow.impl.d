test/test_flow.ml: Alcotest Astring_contains Atpg Circuits Flow Helpers Layout Netlist Scan Sta String
