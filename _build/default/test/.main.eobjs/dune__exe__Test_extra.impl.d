test/test_extra.ml: Alcotest Array Astring_contains Circuits Float Layout List Netlist Sta Stdcell String Tpi
