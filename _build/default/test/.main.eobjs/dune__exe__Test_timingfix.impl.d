test/test_timingfix.ml: Alcotest Circuits Float Flow Layout Netlist Scan Sta
