test/helpers.ml: Alcotest Circuits Float Netlist Stdcell
