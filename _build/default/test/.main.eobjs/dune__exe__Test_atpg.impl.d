test/test_atpg.ml: Alcotest Array Atpg Bytes Circuits Helpers Int64 List Netlist Printf Stdcell Util
