test/test_lbist.ml: Alcotest Array Atpg Circuits Int64 Lbist List Netlist Tpi
