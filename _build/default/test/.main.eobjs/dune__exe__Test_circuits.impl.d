test/test_circuits.ml: Alcotest Array Circuits List Netlist QCheck QCheck_alcotest
