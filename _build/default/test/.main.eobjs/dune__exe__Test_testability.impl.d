test/test_testability.ml: Alcotest Array Circuits Helpers List Netlist Stdcell Testability Tpi
