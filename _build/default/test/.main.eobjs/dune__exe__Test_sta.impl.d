test/test_sta.ml: Alcotest Array Circuits Float Helpers Layout List Netlist Option Sta Stdcell Tpi
