test/test_layout.ml: Alcotest Array Circuits Float Geom Hashtbl Helpers Layout List Netlist Option Scan Stdcell String Util
