test/main.mli:
