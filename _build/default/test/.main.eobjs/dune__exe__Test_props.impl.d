test/test_props.ml: Array Atpg Bytes Circuits Float Geom Hashtbl Layout List Netlist Printf QCheck QCheck_alcotest Scan Sta Stdcell Tpi Util
