(* geom: points and rectangles *)
module Point = Geom.Point
module Rect = Geom.Rect

let test_point_ops () =
  let a = Point.make 1.0 2.0 and b = Point.make 4.0 6.0 in
  Helpers.check_approx "manhattan" 7.0 (Point.manhattan a b);
  Helpers.check_approx "euclid" 5.0 (Point.euclid a b);
  let m = Point.midpoint a b in
  Helpers.check_approx "mid x" 2.5 m.Point.x;
  Helpers.check_approx "mid y" 4.0 m.Point.y;
  let s = Point.add a (Point.scale 2.0 b) in
  Helpers.check_approx "add/scale" 9.0 s.Point.x

let test_rect_basics () =
  let r = Rect.of_size ~lx:1.0 ~ly:2.0 ~w:3.0 ~h:4.0 in
  Helpers.check_approx "area" 12.0 (Rect.area r);
  Helpers.check_approx "half perimeter" 7.0 (Rect.half_perimeter r);
  Helpers.check_approx "aspect" (4.0 /. 3.0) (Rect.aspect_ratio r);
  Alcotest.(check bool) "contains center" true (Rect.contains r (Rect.center r));
  Alcotest.(check bool) "not contains" false (Rect.contains r (Point.make 0.0 0.0))

let test_rect_invalid () =
  Alcotest.check_raises "inverted" (Invalid_argument "Rect.make: inverted rectangle")
    (fun () -> ignore (Rect.make ~lx:2.0 ~ly:0.0 ~ux:1.0 ~uy:1.0))

let test_rect_inset_union () =
  let r = Rect.of_size ~lx:0.0 ~ly:0.0 ~w:10.0 ~h:10.0 in
  let i = Rect.inset r 2.0 in
  Helpers.check_approx "inset area" 36.0 (Rect.area i);
  let e = Rect.expand i 2.0 in
  Helpers.check_approx "expand restores" (Rect.area r) (Rect.area e);
  let u = Rect.union r (Rect.of_size ~lx:5.0 ~ly:5.0 ~w:10.0 ~h:2.0) in
  Helpers.check_approx "union" 150.0 (Rect.area u)

let prop_manhattan_triangle =
  let pt = QCheck.(pair (float_range (-100.) 100.) (float_range (-100.) 100.)) in
  QCheck.Test.make ~name:"manhattan triangle inequality" ~count:300
    QCheck.(triple pt pt pt)
    (fun ((ax, ay), (bx, by), (cx, cy)) ->
      let a = Point.make ax ay and b = Point.make bx by and c = Point.make cx cy in
      Point.manhattan a c <= Point.manhattan a b +. Point.manhattan b c +. 1e-9)

let prop_euclid_le_manhattan =
  let pt = QCheck.(pair (float_range (-100.) 100.) (float_range (-100.) 100.)) in
  QCheck.Test.make ~name:"euclid <= manhattan" ~count:300 QCheck.(pair pt pt)
    (fun ((ax, ay), (bx, by)) ->
      let a = Point.make ax ay and b = Point.make bx by in
      Point.euclid a b <= Point.manhattan a b +. 1e-9)

let suite =
  [ Alcotest.test_case "point ops" `Quick test_point_ops;
    Alcotest.test_case "rect basics" `Quick test_rect_basics;
    Alcotest.test_case "rect invalid" `Quick test_rect_invalid;
    Alcotest.test_case "rect inset/union" `Quick test_rect_inset_union;
    QCheck_alcotest.to_alcotest prop_manhattan_triangle;
    QCheck_alcotest.to_alcotest prop_euclid_le_manhattan ]
