(* Additional edge-case coverage across modules. *)
module Design = Netlist.Design
module Cell = Stdcell.Cell

let test_split_net_moves_port () =
  let d = Helpers.mini_design () in
  (* q0 drives po0; splitting q0 must carry the port binding along *)
  let ff = Design.inst d 2 in
  let q0 = Design.net_of_output d ff in
  let fresh = Design.split_net d ~net:q0 ~name:"q0_tp" in
  let po = Option.get (Design.find_port d "po0") in
  Alcotest.(check int) "port follows sinks" fresh.Design.nid po.Design.pnet;
  Alcotest.(check int) "old net unbound" (-1) (Design.net d q0).Design.out_port

let test_eco_overfill_fallback () =
  (* a pathologically full floorplan still accepts ECO cells (overfilling
     the freest row rather than failing) *)
  let d = Circuits.Bench.tiny ~ffs:16 ~gates:150 () in
  let fp = Layout.Floorplan.create ~utilization:0.999 d in
  let pl = Layout.Place.run d fp in
  let b = Design.add_instance d ~name:"eco" ~cell:(Helpers.cell Cell.Clkbuf) in
  Layout.Eco.add_cell pl ~inst:b.Design.id ~near:(Geom.Rect.center fp.Layout.Floorplan.core);
  Alcotest.(check bool) "placed anyway" true (Layout.Place.is_placed pl b.Design.id)

let test_route_congestion_fields () =
  let d = Circuits.Bench.tiny ~ffs:40 ~gates:500 () in
  let fp = Layout.Floorplan.create d in
  let pl = Layout.Place.run d fp in
  let rt = Layout.Route.run ~gcell_um:10.0 ~capacity:4 pl in
  let total_usage =
    Array.fold_left
      (fun acc row -> Array.fold_left ( + ) acc row)
      0 rt.Layout.Route.usage_h
  in
  Alcotest.(check bool) "usage recorded" true (total_usage > 0);
  Alcotest.(check bool) "tight capacity overflows somewhere" true
    (rt.Layout.Route.overflowed_gcells > 0);
  let loose = Layout.Route.run ~gcell_um:10.0 ~capacity:100000 pl in
  Alcotest.(check int) "loose capacity never overflows" 0 loose.Layout.Route.overflowed_gcells;
  Helpers.check_approx "capacity does not change wirelength"
    rt.Layout.Route.total_wirelength loose.Layout.Route.total_wirelength

let test_generate_under_respects_base () =
  let d = Circuits.Bench.tiny ~ffs:16 ~gates:200 () in
  let m = Netlist.Cmodel.build d in
  let u = Atpg.Fault.build m in
  let podem = Atpg.Podem.create m in
  (* find a fault with a test, then re-generate under its own cube: the
     result must again be a test and must contain the base assignments *)
  let found = ref false in
  Array.iter
    (fun (f : Atpg.Fault.fault) ->
      if not !found then
        match Atpg.Podem.generate podem f with
        | Atpg.Podem.Test cube when cube <> [] ->
          found := true;
          (match Atpg.Podem.generate_under podem ~base:cube f with
           | Atpg.Podem.Test cube' ->
             List.iter
               (fun (s, v) ->
                 Alcotest.(check bool) "base kept" true (List.mem_assoc s cube');
                 Alcotest.(check bool) "base value kept" v (List.assoc s cube'))
               cube
           | _ -> Alcotest.fail "fault untestable under its own cube")
        | _ -> ())
    u.Atpg.Fault.representatives;
  Alcotest.(check bool) "exercised" true !found

let test_conflicting_base_aborts () =
  let d = Circuits.Bench.tiny ~ffs:16 ~gates:200 () in
  let m = Netlist.Cmodel.build d in
  let u = Atpg.Fault.build m in
  let podem = Atpg.Podem.create m in
  (* a base that pins the fault site to its stuck value is unsatisfiable *)
  let f =
    Array.to_list u.Atpg.Fault.representatives
    |> List.find (fun (f : Atpg.Fault.fault) ->
           match f.Atpg.Fault.site with
           | Atpg.Fault.Stem n -> m.Netlist.Cmodel.is_source.(n)
           | _ -> false)
  in
  let site = Atpg.Fault.site_net m f.Atpg.Fault.site in
  let src_index = ref (-1) in
  Array.iteri
    (fun k (n, _) -> if n = site then src_index := k)
    m.Netlist.Cmodel.sources;
  let base = [ (!src_index, f.Atpg.Fault.stuck) ] in
  (match Atpg.Podem.generate_under podem ~base f with
   | Atpg.Podem.Abort -> ()
   | Atpg.Podem.Test _ -> Alcotest.fail "test despite pinned-to-stuck site"
   | Atpg.Podem.Untestable -> Alcotest.fail "generate_under must not claim redundancy")

let test_sta_slow_node_flagging () =
  (* drive an absurd fanout from one X1 inverter and skip the DRC fix:
     the STA must flag the driver as a slow node *)
  let d = Design.create "slow" in
  let clk = Design.add_port d "clk" Design.In in
  let dom = Design.add_domain d ~name:"clk" ~period_ps:10000.0 ~clock_net:clk.Design.pnet in
  let a = Design.add_port d "a" Design.In in
  let inv = Design.add_instance d ~name:"inv" ~cell:(Helpers.cell Cell.Inv) in
  let y = Design.add_net d "y" in
  Design.connect d ~inst:inv.Design.id ~pin:0 ~net:a.Design.pnet;
  Design.connect d ~inst:inv.Design.id ~pin:1 ~net:y.Design.nid;
  for k = 0 to 149 do
    let ff = Design.add_instance d ~name:(Printf.sprintf "ff%d" k) ~cell:(Helpers.cell Cell.Dff) in
    ff.Design.domain <- dom;
    Design.connect d ~inst:ff.Design.id ~pin:0 ~net:y.Design.nid;
    Design.connect d ~inst:ff.Design.id ~pin:1 ~net:clk.Design.pnet;
    let q = Design.add_net d (Printf.sprintf "q%d" k) in
    Design.connect d ~inst:ff.Design.id ~pin:2 ~net:q.Design.nid;
    let po = Design.add_port d (Printf.sprintf "po%d" k) Design.Out in
    Design.connect_out_port d ~port:po.Design.pid ~net:q.Design.nid
  done;
  let fp = Layout.Floorplan.create ~utilization:0.8 d in
  let pl = Layout.Place.run d fp in
  let rt = Layout.Route.run pl in
  let rc = Layout.Extract.run pl rt in
  let sta = Sta.Analysis.run pl rc in
  Alcotest.(check bool) "slow node flagged" true (sta.Sta.Analysis.slow_nodes >= 1)

let test_pipeline_tdv_equations () =
  let d = Circuits.Bench.tiny ~ffs:50 ~gates:600 () in
  let options =
    { Flow.Pipeline.default_options with
      Flow.Pipeline.chain_config = Scan.Chains.Max_length 10 }
  in
  let r = Flow.Pipeline.run ~options d in
  let p = match r.Flow.Pipeline.atpg with Some o -> Atpg.Patgen.num_patterns o | None -> 0 in
  let n = Scan.Chains.num_chains r.Flow.Pipeline.chains in
  let l = r.Flow.Pipeline.chains.Scan.Chains.lmax in
  Alcotest.(check int) "eq 2" (((l + 1) * p) + l) r.Flow.Pipeline.tat_cycles;
  Alcotest.(check int) "eq 1" (2 * n * r.Flow.Pipeline.tat_cycles) r.Flow.Pipeline.tdv_bits

let suite =
  [ Alcotest.test_case "split net moves port" `Quick test_split_net_moves_port;
    Alcotest.test_case "eco overfill" `Quick test_eco_overfill_fallback;
    Alcotest.test_case "route congestion" `Quick test_route_congestion_fields;
    Alcotest.test_case "generate_under base" `Quick test_generate_under_respects_base;
    Alcotest.test_case "conflicting base" `Quick test_conflicting_base_aborts;
    Alcotest.test_case "sta slow nodes" `Quick test_sta_slow_node_flagging;
    Alcotest.test_case "pipeline tdv equations" `Slow test_pipeline_tdv_equations ]

let test_def_export () =
  let d = Circuits.Bench.tiny ~ffs:16 ~gates:150 () in
  let fp = Layout.Floorplan.create d in
  let pl = Layout.Place.run d fp in
  let s = Layout.Defout.to_string pl in
  Alcotest.(check bool) "header" true (Astring_contains.contains s "VERSION 5.8");
  Alcotest.(check bool) "diearea" true (Astring_contains.contains s "DIEAREA");
  Alcotest.(check bool) "components section counts placed cells" true
    (Astring_contains.contains s (Printf.sprintf "COMPONENTS %d ;" (Netlist.Design.num_insts d)));
  Alcotest.(check bool) "nets closed" true (Astring_contains.contains s "END NETS");
  Alcotest.(check bool) "design closed" true (Astring_contains.contains s "END DESIGN")

let suite =
  suite @ [ Alcotest.test_case "def export" `Quick test_def_export ]
