(* circuits.Iscas: the .bench reader, on ISCAS'89 s27 *)

let s27 = {|
# s27 benchmark (ISCAS'89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
|}

let test_s27_structure () =
  let d = Circuits.Iscas.parse ~name:"s27" s27 in
  Netlist.Check.assert_clean d;
  let stats = Netlist.Stats.compute d in
  Alcotest.(check int) "3 flip-flops" 3 stats.Netlist.Stats.ffs;
  (* 2x NOT, AND, 2x OR, NAND, 4x NOR = 10 combinational gates *)
  Alcotest.(check int) "10 gates" 10 stats.Netlist.Stats.combinational;
  Alcotest.(check int) "one domain" 1 (Array.length d.Netlist.Design.domains)

let test_s27_runs_the_flow () =
  let d = Circuits.Iscas.parse ~name:"s27" s27 in
  let options =
    { Flow.Pipeline.default_options with
      Flow.Pipeline.chain_config = Scan.Chains.Max_length 4 }
  in
  let r = Flow.Pipeline.run ~options d in
  (match r.Flow.Pipeline.atpg with
   | Some o ->
     Alcotest.(check bool) "full coverage on s27" true (o.Atpg.Patgen.fault_coverage > 0.95)
   | None -> Alcotest.fail "no atpg");
  Alcotest.(check bool) "timed" true (r.Flow.Pipeline.sta.Sta.Analysis.worst <> None)

let test_nary_decomposition () =
  let src = "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\ny = NAND(a, b, c, d)\n" in
  let d = Circuits.Iscas.parse src in
  Netlist.Check.assert_clean d;
  (* 4-input NAND -> 3 AND2 + INV = 4 cells *)
  Alcotest.(check int) "cells" 4 (Netlist.Design.num_insts d)

let test_parse_errors () =
  Alcotest.(check bool) "bad gate" true
    (try ignore (Circuits.Iscas.parse "INPUT(a)\ny = FROB(a)\n"); false
     with Circuits.Iscas.Parse_error _ -> true);
  Alcotest.(check bool) "garbage" true
    (try ignore (Circuits.Iscas.parse "INPUT(a)\nwat\n"); false
     with Circuits.Iscas.Parse_error _ -> true)

let suite =
  [ Alcotest.test_case "s27 structure" `Quick test_s27_structure;
    Alcotest.test_case "s27 through the flow" `Quick test_s27_runs_the_flow;
    Alcotest.test_case "n-ary decomposition" `Quick test_nary_decomposition;
    Alcotest.test_case "parse errors" `Quick test_parse_errors ]
