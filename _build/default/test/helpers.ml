(* Shared helpers for the test suites. *)

module Design = Netlist.Design
module Cell = Stdcell.Cell
module Lib = Stdcell.Library

let lib = Lib.default

let cell kind = Lib.min_drive_strength lib kind

(* A tiny hand-built sequential circuit:

   pi0 --+--[NAND2 g1]--[INV g2]-- n2 --> ff0.D     ff0.Q -- q0 --> po0
   pi1 --+                                                      \--[g1.B]? no

   Layout: pi0,pi1 -> g1(NAND2) -> g2(INV) -> ff0.D; ff0.Q -> po0 and
   feeds g1? keep acyclic: ff0.Q -> po0 only. *)
let mini_design () =
  let d = Design.create "mini" in
  let clk = Design.add_port d "clk" Design.In in
  let dom = Design.add_domain d ~name:"clk" ~period_ps:4000.0 ~clock_net:clk.Design.pnet in
  let pi0 = Design.add_port d "pi0" Design.In in
  let pi1 = Design.add_port d "pi1" Design.In in
  let po0 = Design.add_port d "po0" Design.Out in
  let g1 = Design.add_instance d ~name:"g1" ~cell:(cell Cell.Nand2) in
  let g2 = Design.add_instance d ~name:"g2" ~cell:(cell Cell.Inv) in
  let ff0 = Design.add_instance d ~name:"ff0" ~cell:(cell Cell.Dff) in
  ff0.Design.domain <- dom;
  let n1 = Design.add_net d "n1" in
  let n2 = Design.add_net d "n2" in
  let q0 = Design.add_net d "q0" in
  Design.connect d ~inst:g1.Design.id ~pin:0 ~net:pi0.Design.pnet;
  Design.connect d ~inst:g1.Design.id ~pin:1 ~net:pi1.Design.pnet;
  Design.connect d ~inst:g1.Design.id ~pin:2 ~net:n1.Design.nid;
  Design.connect d ~inst:g2.Design.id ~pin:0 ~net:n1.Design.nid;
  Design.connect d ~inst:g2.Design.id ~pin:1 ~net:n2.Design.nid;
  Design.connect d ~inst:ff0.Design.id ~pin:0 ~net:n2.Design.nid;
  Design.connect d ~inst:ff0.Design.id ~pin:1 ~net:clk.Design.pnet;
  Design.connect d ~inst:ff0.Design.id ~pin:2 ~net:q0.Design.nid;
  Design.connect_out_port d ~port:po0.Design.pid ~net:q0.Design.nid;
  d

let tiny () = Circuits.Bench.tiny ()

let approx ?(eps = 1e-6) a b = Float.abs (a -. b) <= eps

let check_approx msg a b = Alcotest.(check bool) msg true (approx ~eps:1e-6 a b)
