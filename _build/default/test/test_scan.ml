(* scan: replacement, chains, stitching, reordering *)
module Design = Netlist.Design
module Cell = Stdcell.Cell

let scan_ready () =
  let d = Circuits.Bench.tiny ~ffs:24 ~gates:300 () in
  ignore (Scan.Replace.run d);
  d

let test_replace_all_ffs () =
  let d = Circuits.Bench.tiny ~ffs:24 ~gates:300 () in
  let n = Scan.Replace.run d in
  Alcotest.(check int) "all converted" 24 n;
  Design.iter_insts d (fun i ->
      Alcotest.(check bool) "no plain DFF left" true (i.Design.cell.Cell.kind <> Cell.Dff));
  Netlist.Check.assert_clean d

let test_chain_balance () =
  let d = scan_ready () in
  let t = Scan.Chains.plan d (Scan.Chains.Max_length 10) in
  Alcotest.(check int) "lmax" 8 t.Scan.Chains.lmax;
  Alcotest.(check int) "chains" 3 (Scan.Chains.num_chains t);
  let total = Array.fold_left (fun acc c -> acc + Array.length c) 0 t.Scan.Chains.chains in
  Alcotest.(check int) "all cells chained" 24 total;
  let t2 = Scan.Chains.plan d (Scan.Chains.Num_chains 4) in
  Alcotest.(check int) "fixed chain count" 4 (Scan.Chains.num_chains t2);
  Alcotest.(check int) "lmax from count" 6 t2.Scan.Chains.lmax

let test_stitch_connectivity () =
  let d = scan_ready () in
  let t = Scan.Chains.plan d (Scan.Chains.Max_length 10) in
  Scan.Chains.stitch d t;
  Netlist.Check.assert_clean d;
  (* walk each chain: TI of cell j+1 is driven by Q of cell j; the first
     TI comes from the scan-in port, the last Q feeds the scan-out port *)
  Array.iteri
    (fun k chain ->
      let si = Option.get (Design.find_port d (Printf.sprintf "si%d" k)) in
      Alcotest.(check int) "first TI from si"
        si.Design.pnet (Design.inst d chain.(0)).Design.conns.(1);
      for j = 1 to Array.length chain - 1 do
        let q = Design.net_of_output d (Design.inst d chain.(j - 1)) in
        Alcotest.(check int) "TI linked" q (Design.inst d chain.(j)).Design.conns.(1)
      done;
      let so = Option.get (Design.find_port d (Printf.sprintf "so%d" k)) in
      Alcotest.(check int) "so bound"
        (Design.net_of_output d (Design.inst d chain.(Array.length chain - 1)))
        so.Design.pnet)
    t.Scan.Chains.chains

let test_restitch_idempotent () =
  let d = scan_ready () in
  let t = Scan.Chains.plan d (Scan.Chains.Max_length 10) in
  Scan.Chains.stitch d t;
  Scan.Chains.stitch d t;
  Netlist.Check.assert_clean d

let test_reorder_reduces_wirelength () =
  let d = scan_ready () in
  let fp = Layout.Floorplan.create d in
  let pl = Layout.Place.run d fp in
  let position iid = Layout.Place.position pl iid in
  let r = Scan.Reorder.run d ~config:(Scan.Chains.Max_length 10) ~position in
  Netlist.Check.assert_clean d;
  Alcotest.(check bool) "reorder no worse" true
    (r.Scan.Reorder.wirelength_after <= r.Scan.Reorder.wirelength_before +. 1e-6)

let test_se_buffering () =
  let d = Circuits.Bench.tiny ~ffs:80 ~gates:900 () in
  ignore (Scan.Replace.run d);
  let fp = Layout.Floorplan.create d in
  let pl = Layout.Place.run d fp in
  let position iid = Layout.Place.position pl iid in
  let r = Scan.Reorder.run ~max_se_fanout:16 d ~config:(Scan.Chains.Max_length 20) ~position in
  Alcotest.(check bool) "buffers added" true (List.length r.Scan.Reorder.new_buffers > 0);
  (* after buffering, the raw scan-enable net only feeds buffers *)
  let se = Option.get (Design.find_port d "test_se") in
  List.iter
    (fun (iid, _) ->
      Alcotest.(check bool) "se feeds buffers" true
        ((Design.inst d iid).Design.cell.Cell.kind = Cell.Buf))
    (Design.net d se.Design.pnet).Design.sinks

let suite =
  [ Alcotest.test_case "replace all" `Quick test_replace_all_ffs;
    Alcotest.test_case "chain balance" `Quick test_chain_balance;
    Alcotest.test_case "stitch connectivity" `Quick test_stitch_connectivity;
    Alcotest.test_case "restitch idempotent" `Quick test_restitch_idempotent;
    Alcotest.test_case "reorder wirelength" `Quick test_reorder_reduces_wirelength;
    Alcotest.test_case "scan-enable buffering" `Quick test_se_buffering ]
