(* tpi: TSFF model (Figure 1), insertion, selection, clocking *)
module Design = Netlist.Design
module Cell = Stdcell.Cell
module Tsff = Tpi.Tsff

(* exhaustive check of the TSFF against its gate-level definition:
   input mux (TE ? TI : D) -> FF; output mux (TR ? FF.Q : input mux) *)
let test_tsff_exhaustive () =
  List.iter
    (fun state ->
      List.iter
        (fun d ->
          List.iter
            (fun ti ->
              List.iter
                (fun te ->
                  List.iter
                    (fun tr ->
                      let t = Tsff.create ~init:state () in
                      let imux = if te then ti else d in
                      let expected_q = if tr then state else imux in
                      Alcotest.(check bool) "combinational Q" expected_q
                        (Tsff.output t ~d ~ti ~te ~tr);
                      Tsff.clock t ~d ~ti ~te;
                      Alcotest.(check bool) "FF captures input mux" imux (Tsff.state t))
                    [ false; true ])
                [ false; true ])
            [ false; true ])
        [ false; true ])
    [ false; true ]

let test_tsff_modes () =
  Alcotest.(check bool) "application" true (Tsff.mode_of ~te:false ~tr:false = Tsff.Application);
  Alcotest.(check bool) "shift" true (Tsff.mode_of ~te:true ~tr:true = Tsff.Scan_shift);
  Alcotest.(check bool) "capture" true (Tsff.mode_of ~te:false ~tr:true = Tsff.Scan_capture);
  Alcotest.(check bool) "flush" true (Tsff.mode_of ~te:true ~tr:false = Tsff.Flush)

(* the paper: in capture mode the TSFF is observation point AND control
   point at once *)
let test_tsff_capture_dual_role () =
  let t = Tsff.create ~init:true () in
  (* control: Q driven from the stored bit, independent of D *)
  Alcotest.(check bool) "controls" true (Tsff.output t ~d:false ~ti:false ~te:false ~tr:true);
  (* observation: the functional D value lands in the FF *)
  Tsff.clock t ~d:false ~ti:true ~te:false;
  Alcotest.(check bool) "observes D" false (Tsff.state t)

let test_insert_point_structure () =
  let d = Helpers.mini_design () in
  let n1 = (Design.inst d 0).Design.conns.(2) in
  let old_sinks = (Design.net d n1).Design.sinks in
  let tp = Tpi.Insert.insert_point d ~net:n1 ~index:0 in
  Netlist.Check.assert_clean d;
  Alcotest.(check string) "is tsff" "TSFF" (Cell.kind_name tp.Design.cell.Cell.kind);
  (* the TSFF reads the old net and drives the old sinks *)
  Alcotest.(check (list (pair int int))) "old net now feeds only the TSFF"
    [ (tp.Design.id, 0) ] (Design.net d n1).Design.sinks;
  let q_net = Design.net_of_output d tp in
  Alcotest.(check (list (pair int int))) "old sinks moved to TSFF output"
    old_sinks (Design.net d q_net).Design.sinks;
  Alcotest.(check int) "clock domain assigned" 0 tp.Design.domain;
  (* TE/TR wired to the global test controls *)
  Alcotest.(check bool) "test_se exists" true (Design.find_port d "test_se" <> None);
  Alcotest.(check bool) "test_tr exists" true (Design.find_port d "test_tr" <> None)

let test_insert_rejects_undriven () =
  let d = Design.create "x" in
  let _ = Design.add_domain d ~name:"clk" ~period_ps:1000.0
            ~clock_net:(Design.add_port d "clk" Design.In).Design.pnet in
  let n = Design.add_net d "floating" in
  Alcotest.(check bool) "raises" true
    (try ignore (Tpi.Insert.insert_point d ~net:n.Design.nid ~index:0); false
     with Invalid_argument _ -> true)

let test_select_respects_count_and_blocked () =
  let d = Circuits.Bench.tiny ~gates:400 () in
  let m = Netlist.Cmodel.build d in
  (* block every net: selection must insert nothing *)
  let all_nets = List.init m.Netlist.Cmodel.num_nets Fun.id in
  let config = { Tpi.Select.default_config with Tpi.Select.blocked_nets = all_nets } in
  let rep = Tpi.Select.run ~config d ~count:5 in
  Alcotest.(check int) "all blocked -> none inserted" 0 (List.length rep.Tpi.Select.inserted);
  (* unblocked: exactly the requested count *)
  let d2 = Circuits.Bench.tiny ~gates:400 () in
  let rep2 = Tpi.Select.run d2 ~count:5 in
  Alcotest.(check int) "count honoured" 5 (List.length rep2.Tpi.Select.inserted);
  Netlist.Check.assert_clean d2

let test_select_targets_hard_nets () =
  let d = Circuits.Bench.tiny ~gates:500 () in
  let m = Netlist.Cmodel.build d in
  let cop = Testability.Cop.compute m in
  let tc = Testability.Tc.compute m cop in
  let rep = Tpi.Select.run d ~count:3 in
  Alcotest.(check int) "requested count inserted" 3 (List.length rep.Tpi.Select.inserted);
  if rep.Tpi.Select.scoap_fallbacks = 0 then begin
    (* insertion sites are region heads, so individual sites may read easy;
       at least one must be a genuinely hard net *)
    let hard_chosen =
      List.filter
        (fun n ->
          Float.min tc.Testability.Tc.detect0.(n) tc.Testability.Tc.detect1.(n) < 0.05)
        rep.Tpi.Select.nets_chosen
    in
    Alcotest.(check bool) "some chosen nets were hard" true (hard_chosen <> [])
  end

let test_clocking_follows_neighbourhood () =
  let d = Circuits.Bench.pcore_a ~scale:0.05 () in
  (* every FF D net should resolve to that FF's own domain via backward search *)
  let checked = ref 0 in
  Design.iter_insts d (fun i ->
      if Design.is_ff i && !checked < 20 then begin
        let q = Design.net_of_output d i in
        if q >= 0 && (Design.net d q).Design.sinks <> [] then begin
          incr checked;
          let dom = Tpi.Clocking.domain_for d ~net:q in
          Alcotest.(check bool) "domain valid" true
            (dom >= 0 && dom < Array.length d.Design.domains)
        end
      end)

let suite =
  [ Alcotest.test_case "tsff exhaustive" `Quick test_tsff_exhaustive;
    Alcotest.test_case "tsff modes" `Quick test_tsff_modes;
    Alcotest.test_case "tsff capture dual role" `Quick test_tsff_capture_dual_role;
    Alcotest.test_case "insert structure" `Quick test_insert_point_structure;
    Alcotest.test_case "insert undriven" `Quick test_insert_rejects_undriven;
    Alcotest.test_case "select count/blocked" `Quick test_select_respects_count_and_blocked;
    Alcotest.test_case "select targets hard" `Quick test_select_targets_hard_nets;
    Alcotest.test_case "clocking" `Quick test_clocking_follows_neighbourhood ]
