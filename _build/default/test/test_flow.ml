(* flow: the Figure-2 pipeline, experiment matrix, report tables *)
module P = Flow.Pipeline

let tiny_options ~tp ~atpg =
  { P.default_options with
    P.tp_percent = tp;
    chain_config = Scan.Chains.Max_length 20;
    run_atpg = atpg }

let test_pipeline_consistency () =
  let d = Circuits.Bench.tiny ~ffs:50 ~gates:600 () in
  let r = P.run ~options:(tiny_options ~tp:2.0 ~atpg:true) d in
  Netlist.Check.assert_clean d;
  Alcotest.(check int) "tp count = 2% of ffs" 1 r.P.tp_count;
  Alcotest.(check int) "stats see the TSFF" 1 r.P.stats.Netlist.Stats.test_points;
  Alcotest.(check bool) "atpg ran" true (r.P.atpg <> None);
  Alcotest.(check bool) "tdv consistent" true
    (r.P.tdv_bits
     = Atpg.Tdv.tdv
         ~chains:(Scan.Chains.num_chains r.P.chains)
         ~lmax:r.P.chains.Scan.Chains.lmax
         ~patterns:(match r.P.atpg with Some o -> Atpg.Patgen.num_patterns o | None -> 0));
  Alcotest.(check bool) "sta has a path" true (r.P.sta.Sta.Analysis.worst <> None);
  Alcotest.(check bool) "cts ran" true (r.P.cts.Layout.Cts.buffers > 0)

let test_pipeline_no_atpg_faster_path () =
  let d = Circuits.Bench.tiny ~ffs:50 ~gates:600 () in
  let r = P.run ~options:(tiny_options ~tp:0.0 ~atpg:false) d in
  Alcotest.(check bool) "no atpg outcome" true (r.P.atpg = None);
  Alcotest.(check int) "tdv zero" 0 r.P.tdv_bits

let test_area_grows_with_tp () =
  let run tp =
    let d = Circuits.Bench.tiny ~ffs:100 ~gates:1200 () in
    let r = P.run ~options:(tiny_options ~tp ~atpg:false) d in
    Layout.Floorplan.core_area r.P.placement.Layout.Place.fp
  in
  let a0 = run 0.0 and a5 = run 5.0 in
  Alcotest.(check bool) "core grows" true (a5 > a0);
  Alcotest.(check bool) "but by little" true (a5 < a0 *. 1.03)

let test_experiment_specs () =
  let s = Flow.Experiment.spec_for "pcore_b" in
  Alcotest.(check bool) "dsp uses 32 chains" true
    (s.Flow.Experiment.chain_config = Scan.Chains.Num_chains 32);
  Helpers.check_approx "dsp utilization" 0.5 s.Flow.Experiment.utilization;
  Alcotest.(check bool) "unknown rejected" true
    (try ignore (Flow.Experiment.spec_for "nope"); false with Invalid_argument _ -> true)

let test_tables_render () =
  let rows =
    Flow.Experiment.sweep ~with_atpg:true ~tp_levels:[ 0; 2 ] ~scale:0.06 "s38417"
  in
  let t1 = Flow.Report.table1 rows in
  let t2 = Flow.Report.table2 rows in
  let t3 = Flow.Report.table3 rows in
  Alcotest.(check bool) "t1 mentions faults" true
    (String.length t1 > 0 && Astring_contains.contains t1 "#faults");
  Alcotest.(check bool) "t2 mentions core" true (Astring_contains.contains t2 "core um2");
  Alcotest.(check bool) "t3 mentions skew" true (Astring_contains.contains t3 "T_skew");
  (* baseline rows carry zero deltas *)
  Alcotest.(check bool) "t2 baseline 0.00" true (Astring_contains.contains t2 "0.00")

let test_determinism_of_flow () =
  let run () =
    let d = Circuits.Bench.tiny ~ffs:40 ~gates:500 () in
    let r = P.run ~options:(tiny_options ~tp:2.0 ~atpg:false) d in
    match r.P.sta.Sta.Analysis.worst with Some p -> p.Sta.Analysis.t_cp | None -> 0.0
  in
  Helpers.check_approx "same t_cp twice" (run ()) (run ())

let suite =
  [ Alcotest.test_case "pipeline consistency" `Slow test_pipeline_consistency;
    Alcotest.test_case "pipeline without atpg" `Quick test_pipeline_no_atpg_faster_path;
    Alcotest.test_case "area grows with tp" `Quick test_area_grows_with_tp;
    Alcotest.test_case "experiment specs" `Quick test_experiment_specs;
    Alcotest.test_case "tables render" `Slow test_tables_render;
    Alcotest.test_case "flow determinism" `Quick test_determinism_of_flow ]
