(* lbist: LFSR, MISR, pseudo-random BIST, and the TPI coverage story *)

let test_lfsr_maximal_period () =
  let l = Lbist.Lfsr.create ~width:16 () in
  (* a maximal 16-bit LFSR has period 65535: no return within 10_000 *)
  Alcotest.(check bool) "no short cycle" false (Lbist.Lfsr.period_probe l 10_000);
  (* and it must return at exactly 65535 *)
  Alcotest.(check bool) "full period" true (Lbist.Lfsr.period_probe l 65535)

let test_lfsr_never_zero () =
  let l = Lbist.Lfsr.create ~width:16 ~seed:0L () in
  for _ = 1 to 1000 do
    ignore (Lbist.Lfsr.step l);
    Alcotest.(check bool) "state nonzero" true (Lbist.Lfsr.state l <> 0L)
  done

let test_lfsr_deterministic () =
  let a = Lbist.Lfsr.create ~width:32 ~seed:7L () in
  let b = Lbist.Lfsr.create ~width:32 ~seed:7L () in
  for _ = 1 to 10 do
    Alcotest.(check int64) "same words" (Lbist.Lfsr.next_word a) (Lbist.Lfsr.next_word b)
  done

let test_misr_order_sensitivity () =
  let sig_of words =
    let m = Lbist.Misr.create ~width:32 () in
    List.iter (Lbist.Misr.compact m) words;
    Lbist.Misr.signature m
  in
  Alcotest.(check bool) "equal streams equal signatures" true
    (sig_of [ 1L; 2L; 3L ] = sig_of [ 1L; 2L; 3L ]);
  Alcotest.(check bool) "order matters" true (sig_of [ 1L; 2L; 3L ] <> sig_of [ 3L; 2L; 1L ]);
  Alcotest.(check bool) "content matters" true (sig_of [ 1L; 2L; 3L ] <> sig_of [ 1L; 2L; 4L ])

let test_bist_curve_monotone () =
  let d = Circuits.Bench.tiny ~ffs:24 ~gates:300 () in
  let m = Netlist.Cmodel.build d in
  let r = Lbist.Bist.run m ~max_patterns:2048 in
  Alcotest.(check bool) "has points" true (List.length r.Lbist.Bist.curve >= 2);
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "coverage monotone" true
        (b.Lbist.Bist.coverage >= a.Lbist.Bist.coverage -. 1e-9);
      monotone rest
    | _ -> ()
  in
  monotone r.Lbist.Bist.curve;
  Alcotest.(check bool) "nontrivial coverage" true (r.Lbist.Bist.final_coverage > 0.5)

let test_bist_signature_catches_fault () =
  let d = Circuits.Bench.tiny ~ffs:24 ~gates:300 () in
  let m = Netlist.Cmodel.build d in
  let u = Atpg.Fault.build m in
  (* pick an easy fault (detected by random patterns) and check the
     signature diverges; aliasing at 2^-32+ is negligible here *)
  let sim = Atpg.Fsim.create m in
  let words = Array.init (Array.length m.Netlist.Cmodel.sources) (fun i -> Int64.of_int (i * 977)) in
  Atpg.Fsim.set_sources sim words;
  let easy =
    Array.to_list u.Atpg.Fault.representatives
    |> List.find_opt (fun f -> Atpg.Fsim.detect_mask sim f <> 0L)
  in
  match easy with
  | None -> Alcotest.fail "no easy fault?"
  | Some f ->
    Alcotest.(check bool) "signature differs" true
      (Lbist.Bist.signature_differs_under_fault m f ~patterns:2048)

let test_tpi_raises_pseudorandom_coverage () =
  (* the LBIST story of the paper's section 2: test points lift the
     saturation level of pseudo-random coverage *)
  let base =
    let d = Circuits.Bench.tiny ~ffs:32 ~gates:600 () in
    (Lbist.Bist.run (Netlist.Cmodel.build d) ~max_patterns:4096).Lbist.Bist.final_coverage
  in
  let with_tp =
    let d = Circuits.Bench.tiny ~ffs:32 ~gates:600 () in
    ignore (Tpi.Select.run d ~count:6);
    (Lbist.Bist.run (Netlist.Cmodel.build d) ~max_patterns:4096).Lbist.Bist.final_coverage
  in
  Alcotest.(check bool) "coverage rises with test points" true (with_tp > base)

let suite =
  [ Alcotest.test_case "lfsr period" `Quick test_lfsr_maximal_period;
    Alcotest.test_case "lfsr nonzero" `Quick test_lfsr_never_zero;
    Alcotest.test_case "lfsr deterministic" `Quick test_lfsr_deterministic;
    Alcotest.test_case "misr sensitivity" `Quick test_misr_order_sensitivity;
    Alcotest.test_case "bist curve" `Quick test_bist_curve_monotone;
    Alcotest.test_case "bist signature" `Quick test_bist_signature_catches_fault;
    Alcotest.test_case "tpi raises coverage" `Slow test_tpi_raises_pseudorandom_coverage ]
