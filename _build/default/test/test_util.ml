(* util: Vec and Rng *)
module Vec = Util.Vec
module Rng = Util.Rng

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Alcotest.(check int) "push returns index" i (Vec.push v (i * 2))
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 84 (Vec.get v 42);
  Vec.set v 42 7;
  Alcotest.(check int) "set" 7 (Vec.get v 42)

let test_vec_bounds () =
  let v = Vec.make 3 0 in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v 3));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec.set") (fun () -> Vec.set v (-1) 0)

let test_vec_iter_fold () =
  let v = Vec.of_array [| 1; 2; 3; 4 |] in
  Alcotest.(check int) "fold" 10 (Vec.fold_left ( + ) 0 v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check int) "iteri count" 4 (List.length !acc);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 3) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 9) v)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 50 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_differs_by_seed () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 32 do
    if Rng.int a 1_000_000 = Rng.int b 1_000_000 then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  Alcotest.(check bool) "split produces values" true (Rng.int b 100 >= 0)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_float_in_bounds =
  QCheck.Test.make ~name:"Rng.float stays in bounds" ~count:500
    QCheck.(pair small_int (float_range 0.001 1000.0))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.float rng bound in
      v >= 0.0 && v < bound)

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 1 40) int))
    (fun (seed, l) ->
      let a = Array.of_list l in
      let before = List.sort compare (Array.to_list a) in
      Rng.shuffle (Rng.create seed) a;
      List.sort compare (Array.to_list a) = before)

let suite =
  [ Alcotest.test_case "vec push/get" `Quick test_vec_push_get;
    Alcotest.test_case "vec bounds" `Quick test_vec_bounds;
    Alcotest.test_case "vec iter/fold" `Quick test_vec_iter_fold;
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seed dependence" `Quick test_rng_differs_by_seed;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    QCheck_alcotest.to_alcotest prop_int_in_bounds;
    QCheck_alcotest.to_alcotest prop_float_in_bounds;
    QCheck_alcotest.to_alcotest prop_shuffle_permutation ]
