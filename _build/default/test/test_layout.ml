(* layout: floorplan, place, eco, filler, cts, route, extract, drc, render *)
module Design = Netlist.Design
module Cell = Stdcell.Cell
module Rect = Geom.Rect
module Point = Geom.Point

let placed_tiny () =
  let d = Circuits.Bench.tiny ~ffs:40 ~gates:500 () in
  ignore (Scan.Replace.run d);
  let fp = Layout.Floorplan.create d in
  let pl = Layout.Place.run d fp in
  (d, fp, pl)

let test_floorplan_geometry () =
  let d = Circuits.Bench.tiny () in
  let fp = Layout.Floorplan.create ~utilization:0.8 d in
  Alcotest.(check bool) "near-square core" true
    (Layout.Floorplan.aspect_ratio fp > 0.85 && Layout.Floorplan.aspect_ratio fp < 1.15);
  (* core area = cell area / utilization *)
  let cell_area = (Netlist.Stats.compute d).Netlist.Stats.cell_area in
  Helpers.check_approx "utilization honoured"
    (cell_area /. 0.8 /. Layout.Floorplan.core_area fp) 1.0;
  Alcotest.(check bool) "chip is square" true
    (Float.abs (Rect.width fp.Layout.Floorplan.chip -. Rect.height fp.Layout.Floorplan.chip)
     < 1e-6);
  Alcotest.(check bool) "chip contains core" true
    (Rect.area fp.Layout.Floorplan.chip > Layout.Floorplan.core_area fp);
  Alcotest.(check int) "three rings" 3 (List.length fp.Layout.Floorplan.rings)

let test_placement_legality () =
  let d, fp, pl = placed_tiny () in
  Design.iter_insts d (fun i ->
      if i.Design.cell.Cell.kind <> Cell.Filler then begin
        Alcotest.(check bool) "placed" true (Layout.Place.is_placed pl i.Design.id);
        let p = Layout.Place.position pl i.Design.id in
        Alcotest.(check bool) "inside core" true
          (Rect.contains (Rect.expand fp.Layout.Floorplan.core 0.1) p)
      end);
  (* no row exceeds its length before ECO *)
  Array.iter
    (fun used ->
      Alcotest.(check bool) "row fits" true (used <= fp.Layout.Floorplan.row_length +. 1e-6))
    pl.Layout.Place.row_used;
  (* no two cells in the same row overlap *)
  let by_row = Hashtbl.create 16 in
  Design.iter_insts d (fun i ->
      if Layout.Place.is_placed pl i.Design.id then begin
        let r = pl.Layout.Place.row.(i.Design.id) in
        let x = pl.Layout.Place.x.(i.Design.id) in
        let w = i.Design.cell.Cell.width in
        Hashtbl.replace by_row r ((x, w) :: Option.value ~default:[] (Hashtbl.find_opt by_row r))
      end);
  Hashtbl.iter
    (fun _ cells ->
      let sorted = List.sort compare cells in
      let rec walk = function
        | (x1, w1) :: ((x2, _) :: _ as rest) ->
          Alcotest.(check bool) "no overlap" true (x1 +. w1 <= x2 +. 1e-6);
          walk rest
        | _ -> ()
      in
      walk sorted)
    by_row

let test_placement_deterministic () =
  let _, _, pl1 = placed_tiny () in
  let _, _, pl2 = placed_tiny () in
  Helpers.check_approx "same hpwl" (Layout.Place.hpwl pl1) (Layout.Place.hpwl pl2)

let test_placement_beats_random () =
  (* min-cut placement should clearly beat a random shuffle in HPWL *)
  let d, fp, pl = placed_tiny () in
  let hpwl_real = Layout.Place.hpwl pl in
  let rng = Util.Rng.create 3 in
  let ids = ref [] in
  Design.iter_insts d (fun i ->
      if Layout.Place.is_placed pl i.Design.id then ids := i.Design.id :: !ids);
  let arr = Array.of_list !ids in
  let xs = Array.map (fun iid -> pl.Layout.Place.x.(iid)) arr in
  let rows = Array.map (fun iid -> pl.Layout.Place.row.(iid)) arr in
  Util.Rng.shuffle rng arr;
  Array.iteri
    (fun k iid ->
      pl.Layout.Place.x.(iid) <- xs.(k);
      pl.Layout.Place.row.(iid) <- rows.(k))
    arr;
  let hpwl_random = Layout.Place.hpwl pl in
  ignore fp;
  Alcotest.(check bool) "real placement much shorter" true (hpwl_real < 0.75 *. hpwl_random)

let test_eco_and_filler () =
  let d, fp, pl = placed_tiny () in
  let buf = Design.add_instance d ~name:"eco_buf" ~cell:(Helpers.cell Cell.Buf) in
  let target = Rect.center fp.Layout.Floorplan.core in
  Layout.Eco.add_cell pl ~inst:buf.Design.id ~near:target;
  Alcotest.(check bool) "eco placed" true (Layout.Place.is_placed pl buf.Design.id);
  let p = Layout.Place.position pl buf.Design.id in
  Alcotest.(check bool) "near target" true (Point.manhattan p target < 80.0);
  let rep = Layout.Filler.run pl in
  Alcotest.(check bool) "filler added" true (rep.Layout.Filler.cells_added > 0);
  Alcotest.(check bool) "filler pct sane" true
    (rep.Layout.Filler.filler_area_pct >= 0.0 && rep.Layout.Filler.filler_area_pct < 60.0)

let test_cts_tree () =
  let d, _, pl = placed_tiny () in
  let rep = Layout.Cts.run pl in
  Alcotest.(check bool) "buffers inserted" true (rep.Layout.Cts.buffers > 0);
  Alcotest.(check int) "all ffs are sinks" rep.Layout.Cts.sinks
    (List.length (Design.ffs d));
  Netlist.Check.assert_clean d;
  (* every FF clock pin now reaches the root clock through CLKBUFs only
     (this is what Check's clock tracing verifies); also each leaf buffer
     drives a bounded group *)
  Design.iter_insts d (fun i ->
      if i.Design.cell.Cell.kind = Cell.Clkbuf then begin
        let out = Design.net_of_output d i in
        Alcotest.(check bool) "bounded fanout" true
          (List.length (Design.net d out).Design.sinks <= 16)
      end)

let test_route_trees () =
  let d, _, pl = placed_tiny () in
  let rt = Layout.Route.run pl in
  Alcotest.(check bool) "wirelength positive" true (rt.Layout.Route.total_wirelength > 0.0);
  Array.iter
    (fun route ->
      match route with
      | None -> ()
      | Some (r : Layout.Route.net_route) ->
        let k = Array.length r.Layout.Route.terminals in
        Alcotest.(check int) "parent array sized" k (Array.length r.Layout.Route.parent);
        Alcotest.(check int) "root is driver" (-1) r.Layout.Route.parent.(0);
        (* spanning: every terminal reaches the root *)
        for v = 1 to k - 1 do
          let rec climb v guard =
            if guard > k then Alcotest.fail "parent cycle"
            else if v = 0 then ()
            else climb r.Layout.Route.parent.(v) (guard + 1)
          in
          climb v 0
        done)
    rt.Layout.Route.routes;
  ignore d

let test_extract_elmore () =
  let d, _, pl = placed_tiny () in
  let rt = Layout.Route.run pl in
  let rc = Layout.Extract.run pl rt in
  Design.iter_nets d (fun n ->
      let r = rc.(n.Design.nid) in
      Alcotest.(check bool) "cap nonnegative" true (r.Layout.Extract.total_cap_ff >= 0.0);
      List.iter
        (fun (s : Layout.Extract.sink_rc) ->
          Alcotest.(check bool) "elmore nonnegative" true (s.Layout.Extract.elmore_ps >= 0.0))
        r.Layout.Extract.sink_delays;
      (* wire cap consistent with length *)
      Helpers.check_approx "wire cap = c_per_um * len"
        (Layout.Extract.c_per_um *. r.Layout.Extract.length_um)
        r.Layout.Extract.wire_cap_ff)

let test_drc_upsizes () =
  let d, _, pl = placed_tiny () in
  let before = (Netlist.Stats.compute d).Netlist.Stats.cell_area in
  let rep = Layout.Drc.fix_max_cap pl in
  let after = (Netlist.Stats.compute d).Netlist.Stats.cell_area in
  if rep.Layout.Drc.upsized > 0 then
    Alcotest.(check bool) "area grew" true (after > before)
  else Alcotest.(check bool) "no change" true (Helpers.approx before after);
  Netlist.Check.assert_clean d

let test_render_outputs () =
  let _, fp, pl = placed_tiny () in
  let svg = Layout.Render.svg_floorplan fp in
  Alcotest.(check bool) "svg header" true
    (String.length svg > 100 && String.sub svg 0 4 = "<svg");
  let svg2 = Layout.Render.svg_placement pl in
  Alcotest.(check bool) "placement svg bigger" true (String.length svg2 > String.length svg);
  let ascii = Layout.Render.ascii_density ~cols:32 pl in
  Alcotest.(check bool) "ascii lines" true (String.length ascii > 32)

let suite =
  [ Alcotest.test_case "floorplan geometry" `Quick test_floorplan_geometry;
    Alcotest.test_case "placement legality" `Quick test_placement_legality;
    Alcotest.test_case "placement deterministic" `Quick test_placement_deterministic;
    Alcotest.test_case "placement beats random" `Quick test_placement_beats_random;
    Alcotest.test_case "eco and filler" `Quick test_eco_and_filler;
    Alcotest.test_case "cts tree" `Quick test_cts_tree;
    Alcotest.test_case "route trees" `Quick test_route_trees;
    Alcotest.test_case "extract elmore" `Quick test_extract_elmore;
    Alcotest.test_case "drc upsizing" `Quick test_drc_upsizes;
    Alcotest.test_case "render" `Quick test_render_outputs ]
