(* liberty export and slack reporting *)
module Lib = Stdcell.Library

let test_liberty_export () =
  let s = Stdcell.Liberty.to_string Lib.default in
  Alcotest.(check bool) "has header" true (Astring_contains.contains s "library (tpi_repro_130)");
  Alcotest.(check bool) "has nand2" true (Astring_contains.contains s "cell (NAND2X1)");
  Alcotest.(check bool) "has tsff" true (Astring_contains.contains s "cell (TSFFX1)");
  Alcotest.(check bool) "has tables" true (Astring_contains.contains s "cell_rise");
  Alcotest.(check bool) "marks test arcs" true
    (Astring_contains.contains s "test-mode only arc");
  Alcotest.(check bool) "substantial" true (String.length s > 20_000)

let analysed d =
  let fp = Layout.Floorplan.create d in
  let pl = Layout.Place.run d fp in
  let rt = Layout.Route.run pl in
  let rc = Layout.Extract.run pl rt in
  (pl, rc, Sta.Analysis.run pl rc)

let test_slack_consistency () =
  let d = Circuits.Bench.tiny ~ffs:40 ~gates:500 () in
  let pl, rc, sta = analysed d in
  let s = Sta.Slack.report pl rc sta in
  Alcotest.(check int) "one endpoint per ff" 40 (List.length s.Sta.Slack.endpoints);
  (* wns must agree with the critical path: period - t_cp *)
  (match sta.Sta.Analysis.worst with
   | Some p ->
     let period = d.Netlist.Design.domains.(p.Sta.Analysis.domain).Netlist.Design.period_ps in
     Alcotest.(check bool) "wns = period - t_cp (within wire rounding)" true
       (Float.abs (s.Sta.Slack.wns -. (period -. p.Sta.Analysis.t_cp)) < 1.0)
   | None -> Alcotest.fail "no path");
  (* histogram covers all endpoints *)
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 (Sta.Slack.histogram s ~bucket_ps:500.0) in
  Alcotest.(check int) "histogram complete" (List.length s.Sta.Slack.endpoints) total;
  (* below margin is a prefix of the sorted endpoints *)
  let below = Sta.Slack.below s 1000.0 in
  List.iter
    (fun (e : Sta.Slack.endpoint_slack) ->
      Alcotest.(check bool) "below margin" true (e.Sta.Slack.slack_ps < 1000.0))
    below

let test_blocked_nets_are_avoided () =
  let d = Circuits.Bench.tiny ~ffs:40 ~gates:500 () in
  let pl, _, sta = analysed d in
  let blocked = Sta.Slack.nets_on_worst_paths pl sta ~margin_ps:200.0 in
  Alcotest.(check bool) "some nets near critical" true (List.length blocked > 0);
  (* a fresh identical design: TPI with those nets blocked avoids them *)
  let d2 = Circuits.Bench.tiny ~ffs:40 ~gates:500 () in
  let config = { Tpi.Select.default_config with Tpi.Select.blocked_nets = blocked } in
  let rep = Tpi.Select.run ~config d2 ~count:4 in
  List.iter
    (fun n -> Alcotest.(check bool) "blocked net not chosen" true (not (List.mem n blocked)))
    rep.Tpi.Select.nets_chosen

let suite =
  [ Alcotest.test_case "liberty export" `Quick test_liberty_export;
    Alcotest.test_case "slack consistency" `Quick test_slack_consistency;
    Alcotest.test_case "blocked nets avoided" `Quick test_blocked_nets_are_avoided ]
