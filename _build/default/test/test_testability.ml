(* testability: SCOAP, COP, regions, TC *)
module Design = Netlist.Design
module Cell = Stdcell.Cell

(* and2 of two inputs feeding a captured FF: textbook SCOAP/COP values *)
let and_design () =
  let d = Design.create "and2" in
  let clk = Design.add_port d "clk" Design.In in
  let dom = Design.add_domain d ~name:"clk" ~period_ps:1000.0 ~clock_net:clk.Design.pnet in
  let a = Design.add_port d "a" Design.In in
  let b = Design.add_port d "b" Design.In in
  let g = Design.add_instance d ~name:"g" ~cell:(Helpers.cell Cell.And2) in
  let ff = Design.add_instance d ~name:"ff" ~cell:(Helpers.cell Cell.Dff) in
  ff.Design.domain <- dom;
  let y = Design.add_net d "y" in
  let q = Design.add_net d "q" in
  let po = Design.add_port d "po" Design.Out in
  Design.connect d ~inst:g.Design.id ~pin:0 ~net:a.Design.pnet;
  Design.connect d ~inst:g.Design.id ~pin:1 ~net:b.Design.pnet;
  Design.connect d ~inst:g.Design.id ~pin:2 ~net:y.Design.nid;
  Design.connect d ~inst:ff.Design.id ~pin:0 ~net:y.Design.nid;
  Design.connect d ~inst:ff.Design.id ~pin:1 ~net:clk.Design.pnet;
  Design.connect d ~inst:ff.Design.id ~pin:2 ~net:q.Design.nid;
  Design.connect_out_port d ~port:po.Design.pid ~net:q.Design.nid;
  (d, a.Design.pnet, b.Design.pnet, y.Design.nid)

let test_scoap_and_gate () =
  let d, a, _, y = and_design () in
  let m = Netlist.Cmodel.build d in
  let s = Testability.Scoap.compute m in
  (* CC1(y) = CC1(a) + CC1(b) + 1 = 3; CC0(y) = min(CC0(a), CC0(b)) + 1 = 2 *)
  Helpers.check_approx "cc1 and" 3.0 s.Testability.Scoap.cc1.(y);
  Helpers.check_approx "cc0 and" 2.0 s.Testability.Scoap.cc0.(y);
  (* CO(a) = CO(y) + CC1(b) + 1 = 0 + 1 + 1 *)
  Helpers.check_approx "co input" 2.0 s.Testability.Scoap.co.(a);
  Helpers.check_approx "co output" 0.0 s.Testability.Scoap.co.(y)

let test_cop_and_gate () =
  let d, a, _, y = and_design () in
  let m = Netlist.Cmodel.build d in
  let c = Testability.Cop.compute m in
  Helpers.check_approx "c(y) = 1/4" 0.25 c.Testability.Cop.c.(y);
  Helpers.check_approx "o(y) = 1" 1.0 c.Testability.Cop.o.(y);
  (* observability of input a = o(y) * P(b = 1) *)
  Helpers.check_approx "o(a) = 1/2" 0.5 c.Testability.Cop.o.(a);
  Helpers.check_approx "detect s-a-0 on y" 0.25 (Testability.Cop.detect_prob0 c y);
  Helpers.check_approx "detect s-a-1 on y" 0.75 (Testability.Cop.detect_prob1 c y)

let test_cop_probability_range () =
  let d = Circuits.Bench.tiny () in
  let m = Netlist.Cmodel.build d in
  let c = Testability.Cop.compute m in
  for n = 0 to m.Netlist.Cmodel.num_nets - 1 do
    if m.Netlist.Cmodel.modeled.(n) then begin
      Alcotest.(check bool) "c in [0,1]" true
        (c.Testability.Cop.c.(n) >= -1e-9 && c.Testability.Cop.c.(n) <= 1.0 +. 1e-9);
      Alcotest.(check bool) "o in [0,1]" true
        (c.Testability.Cop.o.(n) >= -1e-9 && c.Testability.Cop.o.(n) <= 1.0 +. 1e-9)
    end
  done

let test_scoap_monotone_with_depth () =
  let d = Circuits.Bench.tiny () in
  let m = Netlist.Cmodel.build d in
  let s = Testability.Scoap.compute m in
  (* sources have unit controllability *)
  Array.iter
    (fun (n, _) ->
      Helpers.check_approx "source cc0" 1.0 s.Testability.Scoap.cc0.(n);
      Helpers.check_approx "source cc1" 1.0 s.Testability.Scoap.cc1.(n))
    m.Netlist.Cmodel.sources

let test_regions () =
  let d = Circuits.Bench.tiny () in
  let m = Netlist.Cmodel.build d in
  let r = Testability.Regions.compute m in
  let heads = Testability.Regions.heads r in
  Alcotest.(check bool) "has regions" true (List.length heads > 0);
  (* total region gate count equals the model's gate count *)
  let total = List.fold_left (fun acc h -> acc + Testability.Regions.size r h) 0 heads in
  Alcotest.(check int) "regions partition the gates" (Array.length m.Netlist.Cmodel.gates) total

let test_tpi_improves_chosen_nets () =
  let d = Circuits.Bench.tiny ~gates:400 () in
  let rep = Tpi.Select.run d ~count:6 in
  Alcotest.(check bool) "tpi cost recorded" true (rep.Tpi.Select.cost_before > 0.0);
  (* after insertion every chosen net is directly captured (perfect
     observability) and its former sinks are driven by a fresh source *)
  let m1 = Netlist.Cmodel.build d in
  let cop1 = Testability.Cop.compute m1 in
  List.iter
    (fun n -> Helpers.check_approx "chosen net now fully observable" 1.0
        cop1.Testability.Cop.o.(n))
    rep.Tpi.Select.nets_chosen

let suite =
  [ Alcotest.test_case "scoap and-gate" `Quick test_scoap_and_gate;
    Alcotest.test_case "cop and-gate" `Quick test_cop_and_gate;
    Alcotest.test_case "cop ranges" `Quick test_cop_probability_range;
    Alcotest.test_case "scoap sources" `Quick test_scoap_monotone_with_depth;
    Alcotest.test_case "regions partition" `Quick test_regions;
    Alcotest.test_case "tpi improves chosen nets" `Quick test_tpi_improves_chosen_nets ]
