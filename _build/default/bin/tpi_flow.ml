(* Command-line driver for the reproduction: run circuits through the
   Figure-2 flow and print the paper's tables. *)

open Cmdliner

let circuit_arg =
  let doc = "Benchmark circuit: s38417, pcore_a or pcore_b." in
  Arg.(value & opt string "s38417" & info [ "c"; "circuit" ] ~docv:"NAME" ~doc)

let scale_arg =
  let doc = "Scale factor applied to the circuit profile (default: per-circuit)." in
  Arg.(value & opt (some float) None & info [ "scale" ] ~docv:"F" ~doc)

let levels_arg =
  let doc = "Test point percentages to sweep." in
  Arg.(value & opt (list int) [ 0; 1; 2; 3; 4; 5 ] & info [ "levels" ] ~docv:"L" ~doc)

let atpg_arg =
  let doc = "Run ATPG (needed for Table 1; slower)." in
  Arg.(value & flag & info [ "atpg" ] ~doc)

let tables_arg =
  let doc = "Tables to print (1, 2 and/or 3)." in
  Arg.(value & opt (list int) [ 2; 3 ] & info [ "tables" ] ~docv:"T" ~doc)

let svg_arg =
  let doc = "Write Figure-3 SVG renderings of the baseline layout to this directory." in
  Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"DIR" ~doc)

let def_arg =
  let doc = "Write the baseline placement as a DEF file." in
  Arg.(value & opt (some string) None & info [ "def" ] ~docv:"FILE" ~doc)

let lib_arg =
  let doc = "Export the standard-cell library as a Liberty (.lib) file." in
  Arg.(value & opt (some string) None & info [ "liberty" ] ~docv:"FILE" ~doc)

let run circuit scale levels atpg tables svg_dir def_file lib_file =
  (match lib_file with
   | Some path ->
     Core.Liberty.write_file path Core.Library.default;
     Printf.printf "wrote %s\n" path
   | None -> ());
  let rows = Core.Experiment.sweep ~with_atpg:atpg ~tp_levels:levels ?scale circuit in
  if List.mem 1 tables && atpg then print_string (Core.Report.table1 rows);
  if List.mem 2 tables then print_string (Core.Report.table2 rows);
  if List.mem 3 tables then print_string (Core.Report.table3 rows);
  print_string (Core.Report.summary rows);
  (match (svg_dir, rows) with
   | Some dir, row :: _ ->
     let r = row.Core.Experiment.result in
     let pl = r.Core.Pipeline.placement in
     Core.Render.write_file (Filename.concat dir "floorplan.svg")
       (Core.Render.svg_floorplan pl.Core.Place.fp);
     Core.Render.write_file (Filename.concat dir "placement.svg")
       (Core.Render.svg_placement pl);
     Core.Render.write_file (Filename.concat dir "routed.svg")
       (Core.Render.svg_routed pl r.Core.Pipeline.route);
     Printf.printf "wrote Figure-3 SVGs to %s\n" dir
   | _ -> ());
  (match (def_file, rows) with
   | Some path, row :: _ ->
     Core.Defout.write_file path row.Core.Experiment.result.Core.Pipeline.placement;
     Printf.printf "wrote %s\n" path
   | _ -> ())

let cmd =
  let doc = "Reproduce 'Impact of Test Point Insertion on Silicon Area and Timing during Layout' (DATE 2004)" in
  Cmd.v (Cmd.info "tpi_flow" ~doc)
    Term.(const run $ circuit_arg $ scale_arg $ levels_arg $ atpg_arg $ tables_arg
          $ svg_arg $ def_arg $ lib_arg)

let () = exit (Cmd.eval cmd)
