(* Figure 1: the transparent scan flip-flop's four operating modes,
   demonstrated on the behavioural model.

   dune exec examples/tsff_modes.exe *)

let show ~te ~tr =
  let t = Core.Tsff.create () in
  let mode = Core.Tsff.mode_of ~te ~tr in
  let mode_name =
    match mode with
    | Core.Tsff.Application -> "application"
    | Core.Tsff.Scan_shift -> "scan shift"
    | Core.Tsff.Scan_capture -> "scan capture"
    | Core.Tsff.Flush -> "flush"
  in
  Format.printf "TE=%b TR=%b  (%s)@." te tr mode_name;
  (* drive D and TI through a few cycles and watch Q *)
  let stimuli = [ (true, false); (false, true); (true, true); (false, false) ] in
  List.iter
    (fun (dd, ti) ->
      let q_before = Core.Tsff.output t ~d:dd ~ti ~te ~tr in
      Core.Tsff.clock t ~d:dd ~ti ~te;
      Format.printf "  D=%b TI=%b -> Q=%b (FF now holds %b)@." dd ti q_before
        (Core.Tsff.state t))
    stimuli;
  Format.printf "@."

let () =
  Format.printf "Transparent scan flip-flop (paper Figure 1)@.@.";
  show ~te:false ~tr:false;  (* application: Q follows D, two mux delays *)
  show ~te:true ~tr:true;    (* shift: Q drives the stored bit, TI captured *)
  show ~te:false ~tr:true;   (* capture: observation + control at once *)
  show ~te:true ~tr:false    (* flush: combinational TI -> Q *)
