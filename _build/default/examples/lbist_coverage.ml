(* Logic BIST context (paper section 2): pseudo-random fault coverage
   saturates against random-resistant logic, and test points raise the
   saturation level. This example prints the coverage curve of an on-chip
   LFSR pattern source with and without 1% test points.

   dune exec examples/lbist_coverage.exe *)

let curve d =
  let m = Core.Cmodel.build d in
  Lbist.Bist.run m ~max_patterns:8192

let () =
  let base = curve (Core.Bench.s38417_like ~scale:0.25 ()) in
  let with_tp =
    let d = Core.Bench.s38417_like ~scale:0.25 () in
    ignore (Core.Tpi_select.run d ~count:4);
    curve d
  in
  Format.printf "pseudo-random stuck-at coverage, 32-bit LFSR (s38417 at 0.25x)@.@.";
  Format.printf "%10s  %12s  %12s@." "patterns" "no TP" "1% TP";
  let rec zip a b =
    match (a, b) with
    | pa :: ra, pb :: rb ->
      Format.printf "%10d  %11.2f%%  %11.2f%%@." pa.Lbist.Bist.patterns
        (100.0 *. pa.Lbist.Bist.coverage) (100.0 *. pb.Lbist.Bist.coverage);
      zip ra rb
    | _ -> ()
  in
  zip base.Lbist.Bist.curve with_tp.Lbist.Bist.curve;
  Format.printf "@.final: %.2f%% -> %.2f%%; MISR signatures %Lx / %Lx@."
    (100.0 *. base.Lbist.Bist.final_coverage)
    (100.0 *. with_tp.Lbist.Bist.final_coverage)
    base.Lbist.Bist.signature with_tp.Lbist.Bist.signature
