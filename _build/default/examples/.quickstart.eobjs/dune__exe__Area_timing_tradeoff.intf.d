examples/area_timing_tradeoff.mli:
