examples/scan_reorder_demo.mli:
