examples/scan_reorder_demo.ml: Core Float Format List Scan
