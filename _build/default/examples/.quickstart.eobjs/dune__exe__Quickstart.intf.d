examples/quickstart.mli:
