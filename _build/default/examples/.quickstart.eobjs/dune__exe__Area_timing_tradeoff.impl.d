examples/area_timing_tradeoff.ml: Core
