examples/tsff_modes.mli:
