examples/lbist_coverage.mli:
