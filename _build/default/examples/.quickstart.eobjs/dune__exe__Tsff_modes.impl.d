examples/tsff_modes.ml: Core Format List
