examples/lbist_coverage.ml: Core Format Lbist
