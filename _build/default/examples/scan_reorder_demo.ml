(* Layout-driven scan-chain reordering (flow step 3): how much scan wiring
   does placement-aware stitching save over netlist-order stitching?

   dune exec examples/scan_reorder_demo.exe *)

let () =
  let d = Core.Bench.s38417_like ~scale:0.25 () in
  ignore (Core.Tpi_select.run d ~count:8);
  let module SR = Core.Scan_reorder in
  let spec = Core.Experiment.spec_for ~scale:0.25 "s38417" in
  ignore spec;
  (* scan insertion + placement *)
  let converted = Scan.Replace.run d in
  Format.printf "converted %d flip-flops to scan@." converted;
  let fp = Core.Floorplan.create d in
  let pl = Core.Place.run d fp in
  let position iid = Core.Place.position pl iid in
  let r = SR.run d ~config:(Scan.Chains.Max_length 100) ~position in
  Format.printf "chains: %d (longest %d)@."
    (Core.Scan_chains.num_chains r.SR.plan) r.SR.plan.Core.Scan_chains.lmax;
  Format.printf "scan wiring, netlist order: %.0f um@." r.SR.wirelength_before;
  Format.printf "scan wiring, layout order:  %.0f um (%.1fx shorter)@."
    r.SR.wirelength_after
    (r.SR.wirelength_before /. Float.max 1.0 r.SR.wirelength_after);
  Format.printf "scan-enable buffers added: %d@." (List.length r.SR.new_buffers)
