(* Quickstart: run the whole Figure-2 flow once on a scaled-down s38417
   with 1% test points, and print what came out of every stage.

   dune exec examples/quickstart.exe *)

let () =
  let row = Core.quickstart ~circuit:"s38417" ~scale:0.25 ~tp_percent:1.0 () in
  let r = row.Core.Experiment.result in
  let d = r.Core.Pipeline.design in
  Format.printf "circuit: %s@." d.Core.Design.design_name;
  Format.printf "netlist: %a@." Core.Stats.pp r.Core.Pipeline.stats;
  Format.printf "test points inserted: %d@." r.Core.Pipeline.tp_count;
  Format.printf "scan: %d chains, longest %d@."
    (Core.Scan_chains.num_chains r.Core.Pipeline.chains)
    r.Core.Pipeline.chains.Core.Scan_chains.lmax;
  (match r.Core.Pipeline.atpg with
   | Some o ->
     Format.printf "ATPG: %d compact patterns, FC %.2f%%, FE %.2f%%@."
       (Core.Patgen.num_patterns o)
       (100.0 *. o.Core.Patgen.fault_coverage)
       (100.0 *. o.Core.Patgen.fault_efficiency);
     Format.printf "test data: %d bits, %d cycles (eqs. 1-2)@."
       r.Core.Pipeline.tdv_bits r.Core.Pipeline.tat_cycles
   | None -> ());
  let fp = r.Core.Pipeline.placement.Core.Place.fp in
  Format.printf "layout: %d rows, core %.0f um^2, chip %.0f um^2, wires %.0f um@."
    (Core.Floorplan.num_rows fp) (Core.Floorplan.core_area fp)
    (Core.Floorplan.chip_area fp) r.Core.Pipeline.route.Core.Route.total_wirelength;
  (match r.Core.Pipeline.sta.Core.Sta_analysis.worst with
   | Some p -> Format.printf "timing: %a@." (Core.Sta_analysis.pp_path d) p
   | None -> ());
  Format.printf "@.placement density:@.%s@."
    (Core.Render.ascii_density ~cols:48 r.Core.Pipeline.placement)
