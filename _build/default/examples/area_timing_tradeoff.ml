(* The paper's core message in one run: sweep test point density on a
   scaled s38417 and watch silicon area grow linearly and slowly while
   timing degrades much faster.

   dune exec examples/area_timing_tradeoff.exe *)

let () =
  let rows = Core.Experiment.sweep ~with_atpg:false ~scale:0.35 "s38417" in
  print_string (Core.Report.table2 rows);
  print_newline ();
  print_string (Core.Report.table3 rows);
  print_newline ();
  print_string (Core.Report.summary rows)
